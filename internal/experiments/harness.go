// Package experiments regenerates every table and figure of the paper's
// evaluation (Tables II-IV, Figures 7-16): each driver sweeps the same
// parameters the paper reports, runs the simulation across several seeds,
// and renders the same rows/series as a plain-text table with mean ±
// standard deviation, mirroring the error bars in the paper's plots.
package experiments

import (
	"fmt"
	"strings"

	"genesys/internal/fault"
	"genesys/internal/platform"
	"genesys/internal/sim"
)

// Options controls how experiments are run.
type Options struct {
	// Runs is the number of seeded repetitions per data point (the paper
	// uses 10-80; the default keeps regeneration fast).
	Runs int
	// BaseSeed is the first seed; run i uses BaseSeed+i.
	BaseSeed int64
	// Observe, when set, is called with every machine an experiment
	// builds, right after construction — the hook the CLI uses to enable
	// event-log tracing and to read the metrics registry afterwards.
	Observe func(*platform.Machine)

	// FaultProfile, when non-empty, arms fault injection with the named
	// profile (see fault.Profiles) on every machine built; FaultRate sets
	// the per-opportunity injection probability (0 selects the default).
	FaultProfile string
	FaultRate    float64

	// EventCap overrides the event-log ring capacity of every machine
	// built (0 keeps obs.DefaultEventCap).
	EventCap int
}

// DefaultOptions returns 3 runs from seed 1.
func DefaultOptions() Options { return Options{Runs: 3, BaseSeed: 1} }

func (o Options) runs() int {
	if o.Runs <= 0 {
		return 1
	}
	return o.Runs
}

// Table is a rendered experiment result.
type Table struct {
	ID     string // e.g. "fig7"
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render produces an aligned plain-text table.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", strings.ToUpper(t.ID), t.Title)
	if t.Note != "" {
		for _, line := range strings.Split(t.Note, "\n") {
			fmt.Fprintf(&b, "  %s\n", line)
		}
	}
	all := append([][]string{t.Header}, t.Rows...)
	widths := make([]int, 0)
	for _, row := range all {
		for i, c := range row {
			for len(widths) <= i {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(row []string) {
		for i, c := range row {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteString("\n")
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	return b.String()
}

// newMachine builds a machine with the given seed and optional tweaks,
// then hands it to the Observe hook, if any.
func newMachine(o Options, seed int64, tweak func(*platform.Config)) *platform.Machine {
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	cfg.EventCap = o.EventCap
	if o.FaultProfile != "" {
		plan, err := fault.PlanFor(o.FaultProfile, o.FaultRate)
		if err != nil {
			panic(err)
		}
		cfg.Faults = &plan
	}
	if tweak != nil {
		tweak(&cfg)
	}
	m := platform.New(cfg)
	if o.Observe != nil {
		o.Observe(m)
	}
	return m
}

// sweep runs fn once per seed and feeds the returned metric into a
// Summary.
func sweep(o Options, fn func(seed int64) float64) *sim.Summary {
	var s sim.Summary
	for i := 0; i < o.runs(); i++ {
		s.Add(fn(o.BaseSeed + int64(i)))
	}
	return &s
}

// ms formats a Summary of millisecond values as "mean ± std".
func ms(s *sim.Summary) string {
	return fmt.Sprintf("%.3f ± %.3f", s.Mean(), s.Std())
}

// f2 formats a Summary with two decimals.
func f2(s *sim.Summary) string {
	return fmt.Sprintf("%.2f ± %.2f", s.Mean(), s.Std())
}

// f0 formats a Summary with no decimals.
func f0(s *sim.Summary) string {
	return fmt.Sprintf("%.0f ± %.0f", s.Mean(), s.Std())
}

// ratio formats a speedup of two summaries.
func ratio(num, den *sim.Summary) string {
	if den.Mean() == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.2fx", num.Mean()/den.Mean())
}
