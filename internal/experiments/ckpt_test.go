package experiments

import (
	"bytes"
	"path/filepath"
	"testing"

	"genesys/internal/ckpt"
	"genesys/internal/replay"
	"genesys/internal/sim"
)

// TestResumeEqualsStraightRun is the core checkpoint/restore guarantee:
// cutting a bench run mid-flight, restoring the snapshot, and running
// to completion yields BENCH_<case>.json (and artifacts) byte-identical
// to the uninterrupted run.
func TestResumeEqualsStraightRun(t *testing.T) {
	for _, name := range []string{"syscall-idle", "coalesce-64", "fleet"} {
		name := name
		t.Run(name, func(t *testing.T) {
			straight, _, arts, err := RunBenchArtifacts(name, 1)
			if err != nil {
				t.Fatalf("straight run: %v", err)
			}
			// Cut mid-run: half the straight run's virtual duration.
			cut := sim.Time(straight.RuntimeMS * float64(sim.Millisecond) / 2)
			if cut <= 0 {
				t.Fatalf("straight run finished at t=0; no mid-run cut possible")
			}
			path := filepath.Join(t.TempDir(), "snap.json")
			if err := CheckpointBench(name, 1, cut, path); err != nil {
				t.Fatalf("checkpoint: %v", err)
			}
			resumed, _, rarts, err := ResumeBench(path)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !bytes.Equal(resumed.JSON(), straight.JSON()) {
				t.Errorf("resumed result diverges from straight run:\nstraight: %s\nresumed:  %s",
					straight.JSON(), resumed.JSON())
			}
			if len(rarts) != len(arts) {
				t.Fatalf("artifact sets differ: straight %d, resumed %d", len(arts), len(rarts))
			}
			for k, v := range arts {
				if !bytes.Equal(rarts[k], v) {
					t.Errorf("artifact %s diverges after resume", k)
				}
			}
		})
	}
}

// TestCheckpointCapturePure asserts capturing a snapshot does not
// perturb the run: a run that was checkpointed mid-flight and then
// continued in the same machine matches the straight run.
func TestCheckpointCapturePure(t *testing.T) {
	straight, _, _, err := RunBenchArtifacts("syscall-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	br, err := StartBench("syscall-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	cut := sim.Time(straight.RuntimeMS * float64(sim.Millisecond) / 3)
	if err := br.M.E.RunUntil(cut); err != nil {
		t.Fatal(err)
	}
	s1 := ckpt.Capture(br.M, ckpt.Meta{Kind: "bench", Case: "syscall-loaded", Seed: 1})
	s2 := ckpt.Capture(br.M, ckpt.Meta{Kind: "bench", Case: "syscall-loaded", Seed: 1})
	for i := range s1.Sections {
		if s1.Sections[i].Digest != s2.Sections[i].Digest {
			t.Errorf("section %q: re-capture at the same instant differs", s1.Sections[i].Name)
		}
	}
	cont, _, _, err := br.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cont.JSON(), straight.JSON()) {
		t.Errorf("run continued after capture diverges from straight run:\nstraight: %s\ncontinued: %s",
			straight.JSON(), cont.JSON())
	}
}

// TestCheckpointWrongRecipeMismatch asserts restore verification
// catches a recipe that does not rebuild the recorded run.
func TestCheckpointWrongRecipeMismatch(t *testing.T) {
	br, err := StartBench("syscall-idle", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	if err := br.M.E.RunUntil(50 * sim.Microsecond); err != nil {
		t.Fatal(err)
	}
	s := ckpt.Capture(br.M, ckpt.Meta{Kind: "bench", Case: "syscall-idle", Seed: 1})
	s.Meta.Case = "syscall-loaded" // lie about the recipe
	path := filepath.Join(t.TempDir(), "snap.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := ResumeBench(path); err == nil {
		t.Fatal("restore with wrong recipe verified clean; want mismatch")
	}
}

// TestRestoreStatsSemantics pins the restore semantics of
// Engine.Stats() and the obs metrics registry: both are RESTORED — the
// deterministic fast-forward re-accumulates them to exactly the
// checkpointed values — never reset to zero. (DESIGN.md §10: a restored
// machine is indistinguishable from one that never stopped, including
// its telemetry.)
func TestRestoreStatsSemantics(t *testing.T) {
	br, err := StartBench("syscall-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer br.Close()
	cut := 300 * sim.Microsecond
	if err := br.M.E.RunUntil(cut); err != nil {
		t.Fatal(err)
	}
	wantStats := br.M.E.Stats()
	wantObs := br.M.Obs.Metrics.Render()
	if wantStats.Scheduled == 0 || wantStats.ProcSwitches == 0 {
		t.Fatalf("cut too early, no activity to compare: %+v", wantStats)
	}
	snap := ckpt.Capture(br.M, ckpt.Meta{Kind: "bench", Case: "syscall-loaded", Seed: 1})

	restored, err := StartBench("syscall-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	defer restored.Close()
	if gotFresh := restored.M.E.Stats(); gotFresh.Scheduled >= wantStats.Scheduled {
		t.Fatalf("fresh machine already has %d events before fast-forward", gotFresh.Scheduled)
	}
	if err := ckpt.FastForward(restored.M, snap); err != nil {
		t.Fatal(err)
	}
	if got := restored.M.E.Stats(); got != wantStats {
		t.Errorf("Engine.Stats() not restored:\n  checkpointed: %+v\n  restored:     %+v", wantStats, got)
	}
	if got := restored.M.Obs.Metrics.Render(); got != wantObs {
		t.Errorf("obs registry not restored:\n--- checkpointed\n%s\n--- restored\n%s", wantObs, got)
	}
}

// TestRecordReplayFleet records the fleet case's syscall stream and
// replays it against a bare kernel pipeline: every syscall number must
// complete exactly as many calls as were recorded.
func TestRecordReplayFleet(t *testing.T) {
	res, tr, err := RecordBench("fleet", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Entries) == 0 {
		t.Fatal("recorded trace is empty")
	}
	if res.Calls != len(tr.Entries) {
		t.Errorf("trace has %d entries, bench counted %d calls", len(tr.Entries), res.Calls)
	}
	if len(tr.Env) == 0 {
		t.Error("fleet trace has no env manifest (server sockets expected)")
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tr.Write(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := replay.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := replay.Run(loaded, replay.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Matches {
		t.Fatalf("replay diverges from recording:\n%s", rep.Render())
	}
	if rep.Completed != len(tr.Entries) {
		t.Errorf("completed %d of %d recorded calls", rep.Completed, len(tr.Entries))
	}
}

// TestRecordingIsPureTap asserts attaching a recorder does not perturb
// the run it records.
func TestRecordingIsPureTap(t *testing.T) {
	straight, _, _, err := RunBenchArtifacts("syscall-idle", 1)
	if err != nil {
		t.Fatal(err)
	}
	recorded, _, err := RecordBench("syscall-idle", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(recorded.JSON(), straight.JSON()) {
		t.Errorf("recorded run diverges from straight run:\nstraight: %s\nrecorded: %s",
			straight.JSON(), recorded.JSON())
	}
}

// TestReplaySweep exercises the sweep harness across worker counts.
func TestReplaySweep(t *testing.T) {
	_, tr, err := RecordBench("syscall-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	table, reps, err := ReplaySweep(tr, []int{2, 8}, nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != 2 {
		t.Fatalf("want 2 reports, got %d", len(reps))
	}
	for _, rep := range reps {
		if !rep.Matches {
			t.Errorf("workers=%d: replay diverges:\n%s", rep.Workers, rep.Render())
		}
	}
	if len(table.Rows) != 2 {
		t.Errorf("sweep table has %d rows, want 2", len(table.Rows))
	}
}
