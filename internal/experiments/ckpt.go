package experiments

import (
	"fmt"

	"genesys/internal/ckpt"
	"genesys/internal/replay"
	"genesys/internal/sim"
)

// This file is the bench-suite face of checkpoint/restore and
// record/replay (DESIGN.md §10): the experiments package owns the
// "bench" recipe — a (case, seed) pair rebuilds the machine — so it is
// the layer that interprets bench snapshots and records bench traces.

// CheckpointBench stages the named bench case, runs it to the cut
// instant, and writes the snapshot. The cut may fall anywhere in the
// run, including past quiescence (the snapshot then captures the final
// state).
func CheckpointBench(name string, seed int64, cutAt sim.Time, path string) error {
	br, err := StartBench(name, seed)
	if err != nil {
		return err
	}
	defer br.Close()
	if err := br.M.E.RunUntil(cutAt); err != nil {
		return err
	}
	s := ckpt.Capture(br.M, ckpt.Meta{Kind: "bench", Case: name, Seed: seed})
	return s.Write(path)
}

// ResumeBench restores a bench snapshot — rebuild from the recipe,
// fast-forward to the cut, verify bit-identity — and runs the case to
// completion. The returned result and artifacts are byte-identical to a
// straight run's (the CI gate).
func ResumeBench(path string) (BenchResult, HostStats, map[string][]byte, error) {
	s, err := ckpt.Load(path)
	if err != nil {
		return BenchResult{}, HostStats{}, nil, err
	}
	if s.Meta.Kind != "bench" {
		return BenchResult{}, HostStats{}, nil,
			fmt.Errorf("bench: snapshot kind %q, want \"bench\" (a %q snapshot restores elsewhere)",
				s.Meta.Kind, s.Meta.Kind)
	}
	br, err := StartBench(s.Meta.Case, s.Meta.Seed)
	if err != nil {
		return BenchResult{}, HostStats{}, nil, err
	}
	defer br.Close()
	if err := ckpt.FastForward(br.M, s); err != nil {
		return BenchResult{}, HostStats{}, nil, err
	}
	return br.Finish()
}

// RecordBench runs the named bench case with a syscall recorder
// attached and returns both the usual result and the captured trace.
// Recording is a pure tap, so the result stays byte-identical to an
// unrecorded run.
func RecordBench(name string, seed int64) (BenchResult, *replay.Trace, error) {
	br, err := StartBench(name, seed)
	if err != nil {
		return BenchResult{}, nil, err
	}
	defer br.Close()
	rec := replay.NewRecorder()
	br.M.Genesys.SetRecorder(rec)
	// Env manifest: the staged (pre-run) fd table of the process GPU
	// syscalls execute in — descriptors the run itself opens are
	// recreated by replaying their open calls.
	var env []replay.EnvFD
	if pr := br.M.Genesys.Process(); pr != nil {
		env = replay.CaptureEnv(pr)
	}
	res, _, _, err := br.Finish()
	if err != nil {
		return BenchResult{}, nil, err
	}
	return res, rec.Finalize(name, seed, env), nil
}

// ReplaySweep replays one trace across worker-count and coalescing
// configurations — the isolated-pipeline sweep a recorded application
// trace buys (no workload procs, just the kernel pipeline under the
// recorded syscall stream).
func ReplaySweep(tr *replay.Trace, workers []int, windows []sim.Time, coalesceMax int) (*Table, []*replay.Report, error) {
	if len(workers) == 0 {
		workers = []int{0}
	}
	if len(windows) == 0 {
		windows = []sim.Time{0}
	}
	t := &Table{
		ID:    "replay",
		Title: fmt.Sprintf("replay sweep of %q (%d syscalls)", tr.Case, len(tr.Entries)),
		Note: "Each cell replays the identical recorded syscall stream against a fresh\n" +
			"kernel pipeline; only the swept knob changes.",
		Header: []string{"workers", "coalesce", "virtual time", "batches", "mean (us)", "p99 (us)", "fidelity"},
	}
	var reps []*replay.Report
	for _, w := range workers {
		for _, win := range windows {
			rep, err := replay.Run(tr, replay.Options{
				Workers: w, CoalesceWindow: win, CoalesceMax: coalesceMax,
			})
			if err != nil {
				return nil, nil, fmt.Errorf("replay sweep (workers=%d coalesce=%v): %w", w, win, err)
			}
			reps = append(reps, rep)
			fidelity := "match"
			if !rep.Matches {
				fidelity = "MISMATCH"
			}
			coal := "off"
			if win > 0 {
				coal = win.String()
			}
			t.AddRow(fmt.Sprint(rep.Workers), coal, sim.Time(rep.DurationNS).String(),
				fmt.Sprint(rep.Batches), fmt.Sprintf("%.2f", rep.MeanUS),
				fmt.Sprintf("%.2f", rep.P99US), fidelity)
		}
	}
	return t, reps, nil
}
