package experiments

// The CI perf-regression sentry: diff a freshly generated bench-artifact
// directory against the committed baselines/ directory. Virtual-time
// artifacts (BENCH_<case>.json, SLO_<case>.json) are deterministic for a
// fixed seed, so the comparison is exact — any drift is a regression (or
// an intentional change that must update the baseline in the same PR).
// BENCH_host.json is host wall-clock and only thresholded: a case fails
// when its wall time exceeds WallFactor × the committed baseline, loose
// enough for CI-runner noise, tight enough to catch a hot path falling
// off a cliff.

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// SentryOptions tunes the comparison.
type SentryOptions struct {
	// WallFactor is the allowed BENCH_host.json wall-clock inflation
	// (default 10×; upper bound only — getting faster never fails).
	WallFactor float64
}

// SentryRow is one per-metric delta in the report.
type SentryRow struct {
	File     string
	Metric   string
	Baseline string
	Fresh    string
	Delta    string
	Fail     bool
}

// SentryReport is the outcome of one sentry comparison.
type SentryReport struct {
	Checked int // files compared
	Rows    []SentryRow
}

// Failed reports whether any row is a failure.
func (r *SentryReport) Failed() bool {
	for _, row := range r.Rows {
		if row.Fail {
			return true
		}
	}
	return false
}

// Render produces the readable per-metric delta table.
func (r *SentryReport) Render() string {
	var b strings.Builder
	fails := 0
	for _, row := range r.Rows {
		if row.Fail {
			fails++
		}
	}
	fmt.Fprintf(&b, "regression sentry: %d file(s) checked, %d delta(s), %d failure(s)\n",
		r.Checked, len(r.Rows), fails)
	if len(r.Rows) == 0 {
		b.WriteString("  all virtual-time metrics byte-identical to baselines\n")
		return b.String()
	}
	t := &Table{ID: "sentry", Title: "baseline deltas",
		Header: []string{"file", "metric", "baseline", "fresh", "delta", "verdict"}}
	for _, row := range r.Rows {
		verdict := "ok"
		if row.Fail {
			verdict = "FAIL"
		}
		t.AddRow(row.File, row.Metric, row.Baseline, row.Fresh, row.Delta, verdict)
	}
	b.WriteString(t.Render())
	return b.String()
}

// RunSentry compares freshDir's bench artifacts against baselineDir's.
// Every BENCH_*.json / SLO_*.json in the baseline set must exist fresh
// and match exactly (except BENCH_host.json, thresholded); fresh
// virtual-time artifacts missing a committed baseline also fail, so new
// bench cases can't land ungated.
func RunSentry(baselineDir, freshDir string, opt SentryOptions) (*SentryReport, error) {
	if opt.WallFactor <= 0 {
		opt.WallFactor = 10
	}
	rep := &SentryReport{}
	base, err := artifactSet(baselineDir)
	if err != nil {
		return nil, fmt.Errorf("sentry: baseline dir: %w", err)
	}
	if len(base) == 0 {
		return nil, fmt.Errorf("sentry: no BENCH_*/SLO_* baselines in %s", baselineDir)
	}
	fresh, err := artifactSet(freshDir)
	if err != nil {
		return nil, fmt.Errorf("sentry: fresh dir: %w", err)
	}
	names := make([]string, 0, len(base))
	for n := range base {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		fpath, ok := fresh[name]
		if !ok {
			rep.Rows = append(rep.Rows, SentryRow{File: name, Metric: "(file)",
				Baseline: "present", Fresh: "missing", Delta: "-", Fail: true})
			continue
		}
		rep.Checked++
		if name == "BENCH_host.json" {
			rows, err := diffHost(base[name], fpath, opt.WallFactor)
			if err != nil {
				return nil, err
			}
			rep.Rows = append(rep.Rows, rows...)
			continue
		}
		rows, err := diffExact(name, base[name], fpath)
		if err != nil {
			return nil, err
		}
		rep.Rows = append(rep.Rows, rows...)
	}
	freshNames := make([]string, 0, len(fresh))
	for n := range fresh {
		freshNames = append(freshNames, n)
	}
	sort.Strings(freshNames)
	for _, name := range freshNames {
		if _, ok := base[name]; !ok {
			rep.Rows = append(rep.Rows, SentryRow{File: name, Metric: "(file)",
				Baseline: "missing", Fresh: "present", Delta: "commit a baseline", Fail: true})
		}
	}
	return rep, nil
}

// artifactSet maps artifact basename → path for the virtual-time
// artifacts of one directory: BENCH_*/SLO_* plus any ANOMALY_* bundles.
// Clean bench runs emit no bundles, so a fresh ANOMALY file without a
// committed baseline is itself a finding — a detector fired where the
// baseline run was quiet.
func artifactSet(dir string) (map[string]string, error) {
	out := make(map[string]string)
	for _, pat := range []string{"BENCH_*.json", "SLO_*.json", "ANOMALY_*.json"} {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return nil, err
		}
		for _, m := range matches {
			out[filepath.Base(m)] = m
		}
	}
	return out, nil
}

// diffExact compares two deterministic JSON artifacts: byte equality
// passes; otherwise every differing flattened metric becomes a failure
// row (so the CI log names exactly what moved, not just "files differ").
func diffExact(name, basePath, freshPath string) ([]SentryRow, error) {
	bb, err := os.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	fb, err := os.ReadFile(freshPath)
	if err != nil {
		return nil, err
	}
	if string(bb) == string(fb) {
		return nil, nil
	}
	bv, err := flattenJSON(bb)
	if err != nil {
		return nil, fmt.Errorf("sentry: %s baseline: %w", name, err)
	}
	fv, err := flattenJSON(fb)
	if err != nil {
		return nil, fmt.Errorf("sentry: %s fresh: %w", name, err)
	}
	var rows []SentryRow
	keys := make([]string, 0, len(bv))
	for k := range bv {
		keys = append(keys, k)
	}
	for k := range fv {
		if _, ok := bv[k]; !ok {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	for _, k := range keys {
		b, inB := bv[k]
		f, inF := fv[k]
		if inB && inF && b == f {
			continue
		}
		row := SentryRow{File: name, Metric: k, Baseline: "-", Fresh: "-", Delta: "-", Fail: true}
		if inB {
			row.Baseline = b
		}
		if inF {
			row.Fresh = f
		}
		if bn, errB := parseNum(b); inB && inF && errB == nil {
			if fn, errF := parseNum(f); errF == nil {
				row.Delta = fmtDelta(bn, fn)
			}
		}
		rows = append(rows, row)
	}
	if len(rows) == 0 {
		// Bytes differ but flattened values match (formatting drift) —
		// still a determinism failure for an exact artifact.
		rows = append(rows, SentryRow{File: name, Metric: "(formatting)",
			Baseline: fmt.Sprintf("%d bytes", len(bb)),
			Fresh:    fmt.Sprintf("%d bytes", len(fb)),
			Delta:    "byte-level drift", Fail: true})
	}
	return rows, nil
}

// hostDoc is the slice of BENCH_host.json the sentry thresholds.
type hostDoc struct {
	Cases []struct {
		Name   string  `json:"name"`
		WallMS float64 `json:"wall_ms"`
	} `json:"cases"`
}

// diffHost thresholds per-case wall-clock: fresh must stay under
// factor × baseline. Informational rows are emitted for every case so
// the CI log shows the wall-clock trend even when nothing fails.
func diffHost(basePath, freshPath string, factor float64) ([]SentryRow, error) {
	var base, fresh hostDoc
	bb, err := os.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(bb, &base); err != nil {
		return nil, fmt.Errorf("sentry: BENCH_host.json baseline: %w", err)
	}
	fb, err := os.ReadFile(freshPath)
	if err != nil {
		return nil, err
	}
	if err := json.Unmarshal(fb, &fresh); err != nil {
		return nil, fmt.Errorf("sentry: BENCH_host.json fresh: %w", err)
	}
	baseBy := make(map[string]float64, len(base.Cases))
	for _, c := range base.Cases {
		baseBy[c.Name] = c.WallMS
	}
	var rows []SentryRow
	for _, c := range fresh.Cases {
		b, ok := baseBy[c.Name]
		if !ok || b <= 0 {
			continue
		}
		fail := c.WallMS > factor*b
		rows = append(rows, SentryRow{
			File:     "BENCH_host.json",
			Metric:   c.Name + ".wall_ms",
			Baseline: fmt.Sprintf("%.2f", b),
			Fresh:    fmt.Sprintf("%.2f", c.WallMS),
			Delta:    fmt.Sprintf("%.2fx (limit %.0fx)", c.WallMS/b, factor),
			Fail:     fail,
		})
	}
	return rows, nil
}

// flattenJSON renders a JSON document as dotted-path → formatted-value
// pairs ("classes.udp.p99_ns" → "285090", "cases[2].calls" → "64").
func flattenJSON(data []byte) (map[string]string, error) {
	var v any
	if err := json.Unmarshal(data, &v); err != nil {
		return nil, err
	}
	out := make(map[string]string)
	var walk func(prefix string, v any)
	walk = func(prefix string, v any) {
		switch x := v.(type) {
		case map[string]any:
			keys := make([]string, 0, len(x))
			for k := range x {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				p := k
				if prefix != "" {
					p = prefix + "." + k
				}
				walk(p, x[k])
			}
		case []any:
			for i, e := range x {
				walk(fmt.Sprintf("%s[%d]", prefix, i), e)
			}
		case float64:
			out[prefix] = formatNum(x)
		case nil:
			out[prefix] = "null"
		default:
			out[prefix] = fmt.Sprintf("%v", x)
		}
	}
	walk("", v)
	return out, nil
}

func formatNum(x float64) string {
	if x == math.Trunc(x) && math.Abs(x) < 1e15 {
		return fmt.Sprintf("%d", int64(x))
	}
	return fmt.Sprintf("%g", x)
}

func parseNum(s string) (float64, error) {
	var x float64
	_, err := fmt.Sscanf(s, "%g", &x)
	return x, err
}

func fmtDelta(b, f float64) string {
	d := f - b
	if b != 0 {
		return fmt.Sprintf("%+g (%+.2f%%)", d, 100*d/b)
	}
	return fmt.Sprintf("%+g", d)
}
