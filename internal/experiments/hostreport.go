package experiments

// BENCH_host.json: the host-side (wall-clock) companion to the
// deterministic BENCH_<case>.json snapshots. Everything here depends on
// the machine and scheduling luck of the run — wall times, throughput
// rates, which driver worker a case landed on — so the file is excluded
// from the byte-identity gates and only wall-clock-thresholded by the
// sentry. Additions to this schema must stay additive: the sentry reads
// only the fields it thresholds, so old baselines keep working.

import (
	"encoding/json"
	"runtime"
	"time"
)

// HostCase is one row of BENCH_host.json: wall-clock throughput of one
// (case, seed) unit on this machine.
type HostCase struct {
	Name               string  `json:"name"`
	Seed               int64   `json:"seed"`
	Calls              int     `json:"calls"`
	WallMS             float64 `json:"wall_ms"`
	SyscallsPerHostSec float64 `json:"syscalls_per_host_sec"`
	SimEventsTotal     uint64  `json:"sim_events_total"`
	EventsPerHostSec   float64 `json:"events_per_host_sec"`
	SimProcSwitches    uint64  `json:"sim_proc_switches_total"`
	SimReadyFast       uint64  `json:"sim_events_ready_fast"`
	SimCallbacksRun    uint64  `json:"sim_callbacks_run"`
	SimProcsReaped     uint64  `json:"sim_procs_reaped"`
	SimTimersCanceled  uint64  `json:"sim_timers_canceled"`
	SimWheelScheduled  uint64  `json:"sim_wheel_scheduled"`
	SimWheelCanceled   uint64  `json:"sim_wheel_canceled"`
	SimWheelPeak       int     `json:"sim_wheel_peak"`
	// ParallelWorker is the driver worker that simulated this unit
	// (0 in a sequential run).
	ParallelWorker int `json:"parallel_worker"`
}

// ScheduleSlot is one entry of the parallel schedule: which worker ran
// which (case, seed) unit and how long it held it. Ordered by work-unit
// order, not completion order.
type ScheduleSlot struct {
	Case   string  `json:"case"`
	Seed   int64   `json:"seed"`
	Worker int     `json:"worker"`
	WallMS float64 `json:"wall_ms"`
}

// HostReport is the BENCH_host.json document.
type HostReport struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	HostCores int    `json:"host_cores"`

	// Parallel is the requested driver parallelism; Workers is how many
	// workers actually ran (min(parallel, units)).
	Parallel int `json:"parallel"`
	Workers  int `json:"parallel_workers"`

	// SuiteWallMS is the end-to-end wall clock of the whole suite
	// invocation. With one worker it is ~the sum of the per-case walls;
	// with N it approaches the longest case's wall (the suite's
	// speedup ceiling — sum/max of the case walls).
	SuiteWallMS float64 `json:"suite_wall_ms"`

	// EventsPerHostSecPerCore is the suite's aggregate simulated-event
	// throughput normalized by the workers used — the host-efficiency
	// figure the ROADMAP's sharded-engine item asks for: it should hold
	// roughly flat as -parallel grows on a big enough host.
	EventsPerHostSecPerCore float64 `json:"events_per_host_second_per_core"`

	Schedule []ScheduleSlot `json:"parallel_schedule"`
	Cases    []HostCase     `json:"cases"`
}

// perHostSec rates n over a wall-clock duration.
func perHostSec(n uint64, wall time.Duration) float64 {
	if wall <= 0 {
		return 0
	}
	return float64(n) / wall.Seconds()
}

// HostReport distills the suite's host-side telemetry into the
// BENCH_host.json document.
func (s *SuiteResult) HostReport() HostReport {
	rep := HostReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		HostCores: runtime.NumCPU(),
		Parallel:  s.Parallel,
		Workers:   s.Workers,
	}
	suiteWall := time.Duration(s.WallNS)
	rep.SuiteWallMS = float64(s.WallNS) / 1e6
	var events uint64
	for _, c := range s.Cases {
		wall := time.Duration(c.Host.WallNS)
		events += c.Host.Events
		rep.Schedule = append(rep.Schedule, ScheduleSlot{
			Case: c.Name, Seed: c.Seed, Worker: c.Worker,
			WallMS: float64(c.Host.WallNS) / 1e6,
		})
		rep.Cases = append(rep.Cases, HostCase{
			Name:               c.Name,
			Seed:               c.Seed,
			Calls:              c.Result.Calls,
			WallMS:             float64(c.Host.WallNS) / 1e6,
			SyscallsPerHostSec: perHostSec(uint64(c.Result.Calls), wall),
			SimEventsTotal:     c.Host.Events,
			EventsPerHostSec:   perHostSec(c.Host.Events, wall),
			SimProcSwitches:    c.Host.ProcSwitches,
			SimReadyFast:       c.Host.ReadyFast,
			SimCallbacksRun:    c.Host.CallbacksRun,
			SimProcsReaped:     c.Host.ProcsReaped,
			SimTimersCanceled:  c.Host.TimersCanceled,
			SimWheelScheduled:  c.Host.WheelScheduled,
			SimWheelCanceled:   c.Host.WheelCanceled,
			SimWheelPeak:       c.Host.WheelPeak,
			ParallelWorker:     c.Worker,
		})
	}
	if rep.Workers > 0 {
		rep.EventsPerHostSecPerCore = perHostSec(events, suiteWall) / float64(rep.Workers)
	}
	return rep
}

// JSON renders the report as indented, key-stable JSON.
func (r HostReport) JSON() []byte {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		panic(err)
	}
	return append(b, '\n')
}
