package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifacts(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

var sentryBaseline = map[string]string{
	"BENCH_fleet.json": `{"name":"fleet","p50_us":26.6,"p99_us":285.1,"calls":57806}`,
	"SLO_fleet.json":   `{"classes":{"udp":{"p99_ns":285090,"min_ns":87600}}}`,
	"BENCH_host.json":  `{"cases":[{"name":"fleet","wall_ms":100.0},{"name":"idle","wall_ms":1.0}]}`,
}

func TestSentryPassesOnIdenticalArtifacts(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	writeArtifacts(t, fresh, sentryBaseline)
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("identical dirs failed:\n%s", rep.Render())
	}
	if rep.Checked != 3 {
		t.Fatalf("checked %d files", rep.Checked)
	}
	// Host rows are informational (present, ok).
	if !strings.Contains(rep.Render(), "fleet.wall_ms") {
		t.Fatalf("render lacks host rows:\n%s", rep.Render())
	}
}

func TestSentryFailsOnMetricRegression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	regressed := map[string]string{}
	for k, v := range sentryBaseline {
		regressed[k] = v
	}
	regressed["BENCH_fleet.json"] = `{"name":"fleet","p50_us":26.6,"p99_us":399.9,"calls":57806}`
	writeArtifacts(t, fresh, regressed)
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("regression not flagged:\n%s", rep.Render())
	}
	out := rep.Render()
	// The delta table names the exact metric with a numeric delta.
	if !strings.Contains(out, "p99_us") || !strings.Contains(out, "285.1") ||
		!strings.Contains(out, "399.9") || !strings.Contains(out, "FAIL") {
		t.Fatalf("delta table unreadable:\n%s", out)
	}
	// Untouched metrics of the same file produce no rows.
	if strings.Contains(out, "p50_us") {
		t.Fatalf("unchanged metric reported:\n%s", out)
	}
}

func TestSentryWallClockThreshold(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	over := map[string]string{}
	for k, v := range sentryBaseline {
		over[k] = v
	}
	// fleet 100ms → 250ms: fails at 2x, passes at 10x. Getting faster
	// (idle 1.0 → wall within limit) never fails.
	over["BENCH_host.json"] = `{"cases":[{"name":"fleet","wall_ms":250.0},{"name":"idle","wall_ms":0.5}]}`
	writeArtifacts(t, fresh, over)
	rep, err := RunSentry(base, fresh, SentryOptions{WallFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("2x threshold missed a 2.5x inflation:\n%s", rep.Render())
	}
	rep, err = RunSentry(base, fresh, SentryOptions{WallFactor: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("10x threshold failed a 2.5x inflation:\n%s", rep.Render())
	}
}

func TestSentryMissingAndExtraFiles(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	// Fresh set drops SLO_fleet.json and adds an ungated new case.
	writeArtifacts(t, fresh, map[string]string{
		"BENCH_fleet.json": sentryBaseline["BENCH_fleet.json"],
		"BENCH_host.json":  sentryBaseline["BENCH_host.json"],
		"BENCH_new.json":   `{"p50_us":1}`,
	})
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("missing/extra files not flagged:\n%s", rep.Render())
	}
	out := rep.Render()
	if !strings.Contains(out, "SLO_fleet.json") || !strings.Contains(out, "missing") {
		t.Fatalf("missing baseline artifact not reported:\n%s", out)
	}
	if !strings.Contains(out, "BENCH_new.json") || !strings.Contains(out, "commit a baseline") {
		t.Fatalf("ungated new artifact not reported:\n%s", out)
	}
}

func TestSentryEmptyBaselineDirErrors(t *testing.T) {
	if _, err := RunSentry(t.TempDir(), t.TempDir(), SentryOptions{}); err == nil {
		t.Fatal("empty baseline dir accepted")
	}
}

// TestSentryAgainstCommittedBaselines regenerates the cheapest bench
// case and checks it against the repo's committed baselines/ — the
// same comparison CI's sentry job runs, scoped to one case so the test
// stays fast.
func TestSentryAgainstCommittedBaselines(t *testing.T) {
	res, err := RunBench("syscall-idle", 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh := t.TempDir()
	if err := os.WriteFile(filepath.Join(fresh, "BENCH_syscall-idle.json"), res.JSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	base := t.TempDir()
	committed, err := os.ReadFile("../../baselines/BENCH_syscall-idle.json")
	if err != nil {
		t.Skipf("no committed baselines: %v", err)
	}
	writeArtifacts(t, base, map[string]string{"BENCH_syscall-idle.json": string(committed)})
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("fresh syscall-idle drifted from committed baseline:\n%s", rep.Render())
	}
}
