package experiments

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeArtifacts(t *testing.T, dir string, files map[string]string) {
	t.Helper()
	for name, body := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

var sentryBaseline = map[string]string{
	"BENCH_fleet.json": `{"name":"fleet","p50_us":26.6,"p99_us":285.1,"calls":57806}`,
	"SLO_fleet.json":   `{"classes":{"udp":{"p99_ns":285090,"min_ns":87600}}}`,
	"BENCH_host.json":  `{"cases":[{"name":"fleet","wall_ms":100.0},{"name":"idle","wall_ms":1.0}]}`,
}

func TestSentryPassesOnIdenticalArtifacts(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	writeArtifacts(t, fresh, sentryBaseline)
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("identical dirs failed:\n%s", rep.Render())
	}
	if rep.Checked != 3 {
		t.Fatalf("checked %d files", rep.Checked)
	}
	// Host rows are informational (present, ok).
	if !strings.Contains(rep.Render(), "fleet.wall_ms") {
		t.Fatalf("render lacks host rows:\n%s", rep.Render())
	}
}

func TestSentryFailsOnMetricRegression(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	regressed := map[string]string{}
	for k, v := range sentryBaseline {
		regressed[k] = v
	}
	regressed["BENCH_fleet.json"] = `{"name":"fleet","p50_us":26.6,"p99_us":399.9,"calls":57806}`
	writeArtifacts(t, fresh, regressed)
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("regression not flagged:\n%s", rep.Render())
	}
	out := rep.Render()
	// The delta table names the exact metric with a numeric delta.
	if !strings.Contains(out, "p99_us") || !strings.Contains(out, "285.1") ||
		!strings.Contains(out, "399.9") || !strings.Contains(out, "FAIL") {
		t.Fatalf("delta table unreadable:\n%s", out)
	}
	// Untouched metrics of the same file produce no rows.
	if strings.Contains(out, "p50_us") {
		t.Fatalf("unchanged metric reported:\n%s", out)
	}
}

func TestSentryWallClockThreshold(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	over := map[string]string{}
	for k, v := range sentryBaseline {
		over[k] = v
	}
	// fleet 100ms → 250ms: fails at 2x, passes at 10x. Getting faster
	// (idle 1.0 → wall within limit) never fails.
	over["BENCH_host.json"] = `{"cases":[{"name":"fleet","wall_ms":250.0},{"name":"idle","wall_ms":0.5}]}`
	writeArtifacts(t, fresh, over)
	rep, err := RunSentry(base, fresh, SentryOptions{WallFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("2x threshold missed a 2.5x inflation:\n%s", rep.Render())
	}
	rep, err = RunSentry(base, fresh, SentryOptions{WallFactor: 10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("10x threshold failed a 2.5x inflation:\n%s", rep.Render())
	}
}

func TestSentryMissingAndExtraFiles(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	// Fresh set drops SLO_fleet.json and adds an ungated new case.
	writeArtifacts(t, fresh, map[string]string{
		"BENCH_fleet.json": sentryBaseline["BENCH_fleet.json"],
		"BENCH_host.json":  sentryBaseline["BENCH_host.json"],
		"BENCH_new.json":   `{"p50_us":1}`,
	})
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("missing/extra files not flagged:\n%s", rep.Render())
	}
	out := rep.Render()
	if !strings.Contains(out, "SLO_fleet.json") || !strings.Contains(out, "missing") {
		t.Fatalf("missing baseline artifact not reported:\n%s", out)
	}
	if !strings.Contains(out, "BENCH_new.json") || !strings.Contains(out, "commit a baseline") {
		t.Fatalf("ungated new artifact not reported:\n%s", out)
	}
}

// TestSentryHostSchemaTolerant pins the additive-schema contract for
// BENCH_host.json: a baseline written before the parallel driver (cases
// with only name + wall_ms, no host_cores/parallel_schedule/
// events_per_host_second_per_core) must still threshold cleanly against
// a fresh report carrying every new field — and the wall-clock
// threshold must still bite through the new schema.
func TestSentryHostSchemaTolerant(t *testing.T) {
	freshHost := `{
  "go_version": "go1.22",
  "goos": "linux",
  "goarch": "amd64",
  "host_cores": 8,
  "parallel": 8,
  "parallel_workers": 2,
  "suite_wall_ms": 120.5,
  "events_per_host_second_per_core": 1500000,
  "parallel_schedule": [
    {"case": "fleet", "seed": 1, "worker": 0, "wall_ms": 110.0},
    {"case": "idle", "seed": 1, "worker": 1, "wall_ms": 1.1}
  ],
  "cases": [
    {"name": "fleet", "seed": 1, "wall_ms": 110.0, "parallel_worker": 0},
    {"name": "idle", "seed": 1, "wall_ms": 1.1, "parallel_worker": 1}
  ]
}`
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	ok := map[string]string{}
	for k, v := range sentryBaseline {
		ok[k] = v
	}
	ok["BENCH_host.json"] = freshHost
	writeArtifacts(t, fresh, ok)
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("new host fields hard-failed an old baseline:\n%s", rep.Render())
	}
	// Same schema, inflated wall: the threshold semantics are unchanged.
	bad := map[string]string{}
	for k, v := range ok {
		bad[k] = v
	}
	bad["BENCH_host.json"] = strings.Replace(freshHost, `"name": "fleet", "seed": 1, "wall_ms": 110.0`,
		`"name": "fleet", "seed": 1, "wall_ms": 2000.0`, 1)
	writeArtifacts(t, fresh, bad)
	rep, err = RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() {
		t.Fatalf("wall threshold lost through the new schema:\n%s", rep.Render())
	}
}

// TestSentryGatesAnomalyBundles: a fresh ANOMALY bundle with no
// committed counterpart fails (a detector fired where the baseline was
// quiet), and a bundle that drifts from its committed bytes fails like
// any other virtual-time artifact.
func TestSentryGatesAnomalyBundles(t *testing.T) {
	base, fresh := t.TempDir(), t.TempDir()
	writeArtifacts(t, base, sentryBaseline)
	withBundle := map[string]string{}
	for k, v := range sentryBaseline {
		withBundle[k] = v
	}
	withBundle["ANOMALY_fleet_001_slo-burn.json"] = `{"reason":"slo-burn","at_ns":412000}`
	writeArtifacts(t, fresh, withBundle)
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || !strings.Contains(rep.Render(), "ANOMALY_fleet_001_slo-burn.json") {
		t.Fatalf("ungated fresh anomaly bundle not flagged:\n%s", rep.Render())
	}
	// Committed bundle + identical fresh bundle: clean.
	writeArtifacts(t, base, withBundle)
	rep, err = RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("identical bundles failed:\n%s", rep.Render())
	}
	// Drifted bundle bytes: a determinism failure.
	drift := map[string]string{}
	for k, v := range withBundle {
		drift[k] = v
	}
	drift["ANOMALY_fleet_001_slo-burn.json"] = `{"reason":"slo-burn","at_ns":999000}`
	writeArtifacts(t, fresh, drift)
	rep, err = RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Failed() || !strings.Contains(rep.Render(), "at_ns") {
		t.Fatalf("drifted bundle not flagged per-metric:\n%s", rep.Render())
	}
}

func TestSentryEmptyBaselineDirErrors(t *testing.T) {
	if _, err := RunSentry(t.TempDir(), t.TempDir(), SentryOptions{}); err == nil {
		t.Fatal("empty baseline dir accepted")
	}
}

// TestSentryAgainstCommittedBaselines regenerates the cheapest bench
// case and checks it against the repo's committed baselines/ — the
// same comparison CI's sentry job runs, scoped to one case so the test
// stays fast.
func TestSentryAgainstCommittedBaselines(t *testing.T) {
	res, err := RunBench("syscall-idle", 1)
	if err != nil {
		t.Fatal(err)
	}
	fresh := t.TempDir()
	if err := os.WriteFile(filepath.Join(fresh, "BENCH_syscall-idle.json"), res.JSON(), 0o644); err != nil {
		t.Fatal(err)
	}
	base := t.TempDir()
	committed, err := os.ReadFile("../../baselines/BENCH_syscall-idle.json")
	if err != nil {
		t.Skipf("no committed baselines: %v", err)
	}
	writeArtifacts(t, base, map[string]string{"BENCH_syscall-idle.json": string(committed)})
	rep, err := RunSentry(base, fresh, SentryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Failed() {
		t.Fatalf("fresh syscall-idle drifted from committed baseline:\n%s", rep.Render())
	}
}
