package experiments

import (
	"bytes"
	"testing"

	"genesys/internal/fault"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/workloads"
)

// chaosFleet runs the service-fleet workload under worker-stall faults
// and returns the flight recorder's bundles.
func chaosFleet(t *testing.T, seed int64) []*obs.Bundle {
	t.Helper()
	plan, err := fault.PlanFor("worker-stall", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	cfg.Faults = &plan
	m := platform.New(cfg)
	defer m.Shutdown()
	fc := workloads.DefaultFleetConfig(800)
	fc.Seed = seed
	if _, err := workloads.RunFleet(m, fc); err != nil {
		t.Fatal(err)
	}
	return m.Obs.Flight.Bundles()
}

// TestAnomalyBundlesDeterministic is the acceptance gate for the flight
// recorder: a seeded chaos fleet run must trip at least one detector,
// the bundle's filtered trace must contain only the implicated +
// neighbor chains, and two identical in-process runs must produce
// byte-identical bundles.
func TestAnomalyBundlesDeterministic(t *testing.T) {
	a := chaosFleet(t, 3)
	if len(a) == 0 {
		t.Fatal("chaos fleet run tripped no detector")
	}
	b := chaosFleet(t, 3)
	if len(a) != len(b) {
		t.Fatalf("bundle count diverged: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Name() != b[i].Name() {
			t.Fatalf("bundle %d name diverged: %s vs %s", i, a[i].Name(), b[i].Name())
		}
		if !bytes.Equal(a[i].JSON(), b[i].JSON()) {
			t.Fatalf("bundle %s not byte-identical across runs", a[i].Name())
		}
	}
	for _, bun := range a {
		allowed := map[uint64]bool{}
		for _, id := range bun.TraceIDs {
			allowed[id] = true
		}
		for _, id := range bun.Neighbors {
			allowed[id] = true
		}
		if len(allowed) == 0 {
			t.Fatalf("%s implicates no chains", bun.Name())
		}
		seen := 0
		for _, e := range bun.Trace.TraceEvents {
			if e.ID == 0 {
				continue
			}
			seen++
			if !allowed[e.ID] {
				t.Fatalf("%s trace leaks chain %d (allowed %v)",
					bun.Name(), e.ID, allowed)
			}
		}
		if seen == 0 {
			t.Fatalf("%s trace has no flow-tagged events", bun.Name())
		}
	}
}

// TestFleetExperimentRuns smoke-tests the fleet experiment driver the
// CI chaos-bundle job invokes.
func TestFleetExperimentRuns(t *testing.T) {
	o := Options{Runs: 1, BaseSeed: 1}
	tbl := Fleet(o)
	if len(tbl.Rows) == 0 {
		t.Fatal("fleet experiment produced no rows")
	}
	if got := len(tbl.Header); got != 11 {
		t.Fatalf("header width %d", got)
	}
}
