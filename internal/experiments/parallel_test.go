package experiments

import (
	"bytes"
	"sync"
	"testing"

	"genesys/internal/fault"
	"genesys/internal/obs"
	"genesys/internal/platform"
	"genesys/internal/workloads"
)

// assertSuitesIdentical compares every virtual-time artifact of two
// suite runs byte-for-byte: BENCH snapshots, SLO reports and any
// anomaly bundles. Host telemetry (wall clocks, worker ids) is exempt.
func assertSuitesIdentical(t *testing.T, label string, seq, par *SuiteResult) {
	t.Helper()
	if len(seq.Cases) != len(par.Cases) {
		t.Fatalf("%s: unit count diverged: %d vs %d", label, len(seq.Cases), len(par.Cases))
	}
	for i := range seq.Cases {
		a, b := seq.Cases[i], par.Cases[i]
		if a.Name != b.Name || a.Seed != b.Seed {
			t.Fatalf("%s: merge order diverged at %d: %s@%d vs %s@%d",
				label, i, a.Name, a.Seed, b.Name, b.Seed)
		}
		if !bytes.Equal(a.Result.JSON(), b.Result.JSON()) {
			t.Fatalf("%s: BENCH_%s.json (seed %d) not byte-identical:\n%s\nvs\n%s",
				label, a.Name, a.Seed, a.Result.JSON(), b.Result.JSON())
		}
		if len(a.Artifacts) != len(b.Artifacts) {
			t.Fatalf("%s: %s@%d artifact count diverged: %d vs %d",
				label, a.Name, a.Seed, len(a.Artifacts), len(b.Artifacts))
		}
		for name, data := range a.Artifacts {
			if !bytes.Equal(data, b.Artifacts[name]) {
				t.Fatalf("%s: artifact %s (%s@%d) not byte-identical",
					label, name, a.Name, a.Seed)
			}
		}
	}
}

// TestParallelSuiteMatchesSequential is the byte-identity property the
// parallel driver is gated on: for every seed, -parallel N produces
// BENCH/SLO/ANOMALY artifacts byte-identical to -parallel 1, across two
// seeds and two values of N. The full (case × seed) grid runs under
// N=4; a subset including the fleet case re-runs under N=2.
func TestParallelSuiteMatchesSequential(t *testing.T) {
	seeds := []int64{1, 2}
	seq, err := RunBenchSuite(SuiteOptions{Seeds: seeds, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par4, err := RunBenchSuite(SuiteOptions{Seeds: seeds, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	assertSuitesIdentical(t, "parallel=4", seq, par4)
	if par4.Workers != 4 {
		t.Fatalf("parallel=4 used %d workers", par4.Workers)
	}
	if testing.Short() {
		t.Skip("skipping parallel=2 leg in -short mode")
	}
	subset := []string{"syscall-idle", "coalesce-64", "fleet"}
	seq2, err := RunBenchSuite(SuiteOptions{Cases: subset, Seeds: seeds, Parallel: 1})
	if err != nil {
		t.Fatal(err)
	}
	par2, err := RunBenchSuite(SuiteOptions{Cases: subset, Seeds: seeds, Parallel: 2})
	if err != nil {
		t.Fatal(err)
	}
	assertSuitesIdentical(t, "parallel=2", seq2, par2)
	if par2.Workers != 2 {
		t.Fatalf("parallel=2 used %d workers", par2.Workers)
	}
}

// TestParallelSuiteMergeOrder: results merge in work-unit order (seeds
// as given, cases in emission order) with plausible host telemetry —
// never in completion order — and the host report reflects the
// parallel configuration.
func TestParallelSuiteMergeOrder(t *testing.T) {
	cases := []string{"syscall-idle", "net-loopback"}
	seeds := []int64{5, 6}
	s, err := RunBenchSuite(SuiteOptions{Cases: cases, Seeds: seeds, Parallel: 4})
	if err != nil {
		t.Fatal(err)
	}
	want := [][2]interface{}{
		{"syscall-idle", int64(5)}, {"net-loopback", int64(5)},
		{"syscall-idle", int64(6)}, {"net-loopback", int64(6)},
	}
	if len(s.Cases) != len(want) {
		t.Fatalf("unit count %d", len(s.Cases))
	}
	for i, c := range s.Cases {
		if c.Name != want[i][0] || c.Seed != want[i][1] {
			t.Fatalf("unit %d = %s@%d, want %v", i, c.Name, c.Seed, want[i])
		}
		if c.Worker < 0 || c.Worker >= s.Workers {
			t.Fatalf("unit %d ran on worker %d of %d", i, c.Worker, s.Workers)
		}
		if c.Host.WallNS <= 0 || c.Host.Events == 0 {
			t.Fatalf("unit %d host telemetry empty: %+v", i, c.Host)
		}
	}
	rep := s.HostReport()
	if rep.Parallel != 4 || rep.Workers != s.Workers || rep.HostCores < 1 {
		t.Fatalf("host report config: %+v", rep)
	}
	if rep.SuiteWallMS <= 0 || rep.EventsPerHostSecPerCore <= 0 {
		t.Fatalf("host report rates: suite_wall_ms=%v per_core=%v",
			rep.SuiteWallMS, rep.EventsPerHostSecPerCore)
	}
	if len(rep.Schedule) != len(s.Cases) || len(rep.Cases) != len(s.Cases) {
		t.Fatalf("host report rows: %d schedule, %d cases", len(rep.Schedule), len(rep.Cases))
	}
	for i, slot := range rep.Schedule {
		if slot.Case != s.Cases[i].Name || slot.Seed != s.Cases[i].Seed ||
			slot.Worker != s.Cases[i].Worker {
			t.Fatalf("schedule slot %d = %+v, want %s@%d on %d",
				i, slot, s.Cases[i].Name, s.Cases[i].Seed, s.Cases[i].Worker)
		}
	}
}

// TestParallelSuiteUnknownCaseFailsFast: a bad case name errors before
// any machine is built.
func TestParallelSuiteUnknownCaseFailsFast(t *testing.T) {
	if _, err := RunBenchSuite(SuiteOptions{Cases: []string{"fleet", "no-such-case"}, Parallel: 8}); err == nil {
		t.Fatal("unknown case accepted")
	}
}

// chaosFleetBundles is chaosFleet without the testing.T plumbing, so it
// can run on worker goroutines (t.Fatal must not leave the test
// goroutine).
func chaosFleetBundles(seed int64) ([]*obs.Bundle, error) {
	plan, err := fault.PlanFor("worker-stall", 0.05)
	if err != nil {
		return nil, err
	}
	cfg := platform.DefaultConfig()
	cfg.Seed = seed
	cfg.Faults = &plan
	m := platform.New(cfg)
	defer m.Shutdown()
	fc := workloads.DefaultFleetConfig(800)
	fc.Seed = seed
	if _, err := workloads.RunFleet(m, fc); err != nil {
		return nil, err
	}
	return m.Obs.Flight.Bundles(), nil
}

// TestParallelChaosBundlesMatchSequential extends the byte-identity bar
// to faulted machines: three chaos fleet machines (two sharing a seed)
// simulated concurrently must produce exactly the anomaly bundles a
// sequential run of each seed produces — fault plans, injector RNG
// streams and flight recorders are per-machine, and running them side
// by side must not perturb any of them.
func TestParallelChaosBundlesMatchSequential(t *testing.T) {
	seeds := []int64{3, 4, 3}
	want := make([][]*obs.Bundle, len(seeds))
	for i, seed := range seeds {
		b, err := chaosFleetBundles(seed)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = b
	}
	if len(want[0]) == 0 {
		t.Fatal("chaos fleet run tripped no detector")
	}
	got := make([][]*obs.Bundle, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, seed := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			got[i], errs[i] = chaosFleetBundles(seed)
		}(i, seed)
	}
	wg.Wait()
	for i := range seeds {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if len(got[i]) != len(want[i]) {
			t.Fatalf("seed %d: bundle count %d vs sequential %d", seeds[i], len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			if got[i][j].Name() != want[i][j].Name() ||
				!bytes.Equal(got[i][j].JSON(), want[i][j].JSON()) {
				t.Fatalf("seed %d: bundle %d (%s) diverged from sequential run",
					seeds[i], j, want[i][j].Name())
			}
		}
	}
}
