package experiments

import (
	"bytes"
	"encoding/json"
	"testing"
)

// TestBenchDeterministic: the property CI's perf-snapshot artifacts rely
// on — the same case and seed produce byte-identical JSON. The whole
// suite runs twice in-process so engine-internal state (event pooling,
// ready-queue reuse, proc reaping) from one run cannot leak into the
// next machine's virtual-time behavior.
func TestBenchDeterministic(t *testing.T) {
	for _, name := range BenchNames() {
		a, err := RunBench(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		b, err := RunBench(name, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.JSON(), b.JSON()) {
			t.Fatalf("%s diverged across identical runs:\n%s\nvs\n%s",
				name, a.JSON(), b.JSON())
		}
	}
}

// TestBenchHostStats: RunBenchHost reports the same deterministic
// snapshot plus plausible host-side engine telemetry.
func TestBenchHostStats(t *testing.T) {
	res, host, err := RunBenchHost("syscall-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := RunBench("syscall-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.JSON(), plain.JSON()) {
		t.Fatal("RunBenchHost snapshot differs from RunBench")
	}
	if host.WallNS <= 0 {
		t.Fatalf("wall_ns=%d", host.WallNS)
	}
	if host.Events == 0 || host.ProcSwitches == 0 {
		t.Fatalf("engine telemetry empty: %+v", host)
	}
	if host.Events < host.ReadyFast {
		t.Fatalf("ready-fast %d exceeds events %d", host.ReadyFast, host.Events)
	}
	if host.ProcsSpawned == 0 || host.ProcsReaped == 0 {
		t.Fatalf("proc reaping not observed: %+v", host)
	}
	if host.ProcsReaped > host.ProcsSpawned {
		t.Fatalf("reaped %d > spawned %d", host.ProcsReaped, host.ProcsSpawned)
	}
}

func TestBenchSnapshotShape(t *testing.T) {
	res, err := RunBench("syscall-loaded", 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calls != 256 || res.Aborted != 0 {
		t.Fatalf("calls=%d aborted=%d", res.Calls, res.Aborted)
	}
	if !(res.P50US > 0 && res.P50US <= res.P95US && res.P95US <= res.P99US) {
		t.Fatalf("percentiles disordered: %v %v %v", res.P50US, res.P95US, res.P99US)
	}
	if len(res.PhaseMeanUS) != 5 {
		t.Fatalf("phase map has %d entries", len(res.PhaseMeanUS))
	}
	if res.CPUUtilPct <= 0 || res.GPUCUUtilPct <= 0 {
		t.Fatalf("utilization missing: cpu=%v gpu=%v", res.CPUUtilPct, res.GPUCUUtilPct)
	}
	if res.EventsRejected != 0 {
		t.Fatalf("%d events rejected", res.EventsRejected)
	}
	// The JSON round-trips and keeps its name field.
	var back BenchResult
	if err := json.Unmarshal(res.JSON(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Name != "syscall-loaded" || back.Seed != 1 {
		t.Fatalf("round-trip lost identity: %+v", back)
	}

	if _, err := RunBench("no-such-case", 1); err == nil {
		t.Fatal("unknown case accepted")
	}
}
