package experiments

import (
	"fmt"

	"genesys/internal/core"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/workloads"
)

// Ablation quantifies the design choices DESIGN.md flags (⚗): the padded
// slot layout, the dynamically-grown kernel worker pool, and the
// sensitivity of syscall latency to the GPU→CPU interrupt path — the
// "design guidelines for practitioners" the paper lists as its third
// contribution.
func Ablation(o Options) *Table {
	t := &Table{
		ID:    "ablation",
		Title: "Design-choice ablations (DESIGN.md §4)",
		Note: "Each row removes or perturbs one design decision and reports its cost on a\n" +
			"work-item-granularity pread flood (512 work-items × 4 KiB, tmpfs).",
		Header: []string{"design point", "variant", "read time (ms)", "vs default"},
	}

	flood := func(tweak func(*platform.Config)) *sim.Summary {
		return sweep(o, func(seed int64) float64 {
			m := newMachine(o, seed, tweak)
			defer m.Shutdown()
			res, err := workloads.RunPread(m, workloads.PreadConfig{
				FileSize: 512 * 4096, ChunkPerWI: 4096, WGSize: 64,
				Granularity: workloads.GranWorkItem, Wait: core.WaitPoll,
			})
			if err != nil || !res.Validated {
				panic(fmt.Sprint("ablation: ", err))
			}
			return res.ReadTime.Milli()
		})
	}

	base := flood(nil)
	add := func(point, variant string, s *sim.Summary) {
		t.AddRow(point, variant, ms(s), fmt.Sprintf("%.2fx", s.Mean()/base.Mean()))
	}
	t.AddRow("(default)", "padded slots, dynamic workers, 5us irq", ms(base), "1.00x")

	// ⚗2: slot layout.
	add("slot layout", "packed 4/line (false sharing)",
		flood(func(c *platform.Config) { c.Genesys.PackedSlots = true }))

	// Dynamic worker pool (cmwq): pin the pool at its initial size.
	add("worker pool", "static 1 worker",
		flood(func(c *platform.Config) { c.Kernel.Workers, c.Kernel.MaxWorkers = 1, 1 }))
	add("worker pool", "static 3 workers",
		flood(func(c *platform.Config) { c.Kernel.MaxWorkers = c.Kernel.Workers }))
	add("worker pool", "static 16 workers",
		flood(func(c *platform.Config) { c.Kernel.Workers, c.Kernel.MaxWorkers = 16, 16 }))

	// Interrupt delivery latency sensitivity.
	for _, us := range []int64{1, 20, 80} {
		us := us
		add("irq latency", fmt.Sprintf("%dus delivery", us),
			flood(func(c *platform.Config) {
				c.GPU.InterruptLatency = sim.Time(us) * sim.Microsecond
			}))
	}

	// Coalescing on the same flood.
	add("coalescing", "8-way, 50us window",
		flood(func(c *platform.Config) {
			c.Genesys.CoalesceWindow = 50 * sim.Microsecond
			c.Genesys.CoalesceMax = 8
		}))
	return t
}
