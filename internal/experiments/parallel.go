package experiments

// The parallel multi-machine bench driver: N fully isolated simulated
// machines run concurrently in one host process, one per (case, seed)
// work unit. Isolation is structural — every machine owns its own
// sim.Engine, obs.Registry, obs.Flight, fault plan and artifact buffers
// (RunBenchArtifacts builds all of them inside the worker goroutine and
// nothing escapes but the finished SuiteCase) — so a parallel run
// produces BENCH_<case>.json / SLO_*.json / ANOMALY_*.json bytes
// identical to a sequential one for the same seed. Results are merged
// in work-unit order (seeds in the order given, cases in emission
// order), never in completion order, so everything downstream of the
// driver — file writes, console lines, the host report's case table —
// is deterministic even though scheduling is not. Only host wall-clock
// telemetry (HostStats, the parallel schedule) reflects the actual
// nondeterministic execution, and that is exactly the part BENCH_host.json
// carries outside the byte-identity gate.

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
	"time"
)

// SuiteOptions parameterizes one bench-suite invocation.
type SuiteOptions struct {
	// Cases are the bench case names to run (all, in emission order,
	// when empty).
	Cases []string
	// Seeds are the machine seeds to run every case under (seed 1 when
	// empty). Each (case, seed) pair is one work unit with its own
	// machine.
	Seeds []int64
	// Parallel is the maximum number of machines simulated concurrently;
	// values <= 1 run every unit sequentially in the calling goroutine —
	// byte-for-byte the pre-parallel driver.
	Parallel int

	// CPUProfile / MemProfile, when set, write pprof profiles covering
	// exactly the simulation work of the suite (not flag parsing or
	// artifact writes). Profiling requires Parallel == 1: a sequential
	// run attributes every sample to one machine's hot path, which is
	// the shape perf work needs — concurrent machines time-sharing the
	// cores would smear the profile across worker goroutines.
	CPUProfile string
	MemProfile string
}

// SuiteCase is one completed (case, seed) work unit.
type SuiteCase struct {
	Name      string
	Seed      int64
	Result    BenchResult
	Host      HostStats
	Artifacts map[string][]byte
	// Worker is the driver worker that ran this unit (0 for a
	// sequential run). Host-side telemetry only: which worker a unit
	// lands on is scheduling-dependent.
	Worker int
}

// SuiteResult is a completed bench-suite run: every work unit in
// deterministic merge order plus the suite-level host telemetry.
type SuiteResult struct {
	Cases    []SuiteCase
	Parallel int   // requested parallelism
	Workers  int   // workers actually used: min(Parallel, units)
	WallNS   int64 // end-to-end suite wall clock
}

// normalize resolves defaults and validates every case name up front,
// so an unknown case fails fast instead of after minutes of simulation.
func (o SuiteOptions) normalize() (SuiteOptions, error) {
	if len(o.Cases) == 0 {
		o.Cases = BenchNames()
	}
	for _, name := range o.Cases {
		if benchCaseByName(name) == nil {
			return o, fmt.Errorf("unknown case %q (have %v)", name, BenchNames())
		}
	}
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1}
	}
	if o.Parallel < 1 {
		o.Parallel = 1
	}
	if (o.CPUProfile != "" || o.MemProfile != "") && o.Parallel != 1 {
		return o, fmt.Errorf("profiling requires -parallel 1 (got -parallel %d)", o.Parallel)
	}
	return o, nil
}

// RunBenchSuite runs the (case × seed) work grid, at most opt.Parallel
// machines at a time, and returns the merged results: seeds in the
// order given, cases in emission order within each seed — regardless of
// which unit finished first.
func RunBenchSuite(opt SuiteOptions) (*SuiteResult, error) {
	opt, err := opt.normalize()
	if err != nil {
		return nil, err
	}
	type unit struct {
		name string
		seed int64
	}
	units := make([]unit, 0, len(opt.Seeds)*len(opt.Cases))
	for _, seed := range opt.Seeds {
		for _, name := range opt.Cases {
			units = append(units, unit{name, seed})
		}
	}
	out := make([]SuiteCase, len(units))
	errs := make([]error, len(units))
	runUnit := func(i, worker int) {
		u := units[i]
		res, host, artifacts, err := RunBenchArtifacts(u.name, u.seed)
		out[i] = SuiteCase{Name: u.name, Seed: u.seed, Result: res,
			Host: host, Artifacts: artifacts, Worker: worker}
		errs[i] = err
	}
	start := time.Now()
	workers := opt.Parallel
	if workers > len(units) {
		workers = len(units)
	}
	if workers <= 1 {
		// The sequential path: today's behavior, one machine at a time
		// in the calling goroutine.
		workers = 1
		if opt.CPUProfile != "" {
			f, err := os.Create(opt.CPUProfile)
			if err != nil {
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				return nil, fmt.Errorf("cpuprofile: %w", err)
			}
			defer func() {
				pprof.StopCPUProfile()
				f.Close()
			}()
		}
		for i := range units {
			runUnit(i, 0)
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
		if opt.MemProfile != "" {
			f, err := os.Create(opt.MemProfile)
			if err != nil {
				return nil, fmt.Errorf("memprofile: %w", err)
			}
			runtime.GC() // materialize final heap stats before the snapshot
			werr := pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				return nil, fmt.Errorf("memprofile: %w", werr)
			}
		}
	} else {
		// Worker pool over a shared index feed. Workers share nothing
		// but the feed channel and their disjoint out/errs slots; each
		// machine is built, run and distilled entirely inside one
		// worker goroutine.
		feed := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(worker int) {
				defer wg.Done()
				for i := range feed {
					runUnit(i, worker)
				}
			}(w)
		}
		for i := range units {
			feed <- i
		}
		close(feed)
		wg.Wait()
		// First error in unit order, not completion order, so the
		// reported failure is deterministic too.
		for i := range units {
			if errs[i] != nil {
				return nil, errs[i]
			}
		}
	}
	return &SuiteResult{
		Cases:    out,
		Parallel: opt.Parallel,
		Workers:  workers,
		WallNS:   time.Since(start).Nanoseconds(),
	}, nil
}
