// Package genesys is a from-scratch Go reproduction of "Generic System
// Calls for GPUs" (Veselý et al., ISCA 2018): a discrete-event-simulated
// heterogeneous machine (CPU, GCN3-like GPU, shared memory system,
// Linux-like kernel, tmpfs + SSD filesystems, UDP network stack, virtual
// memory, signals) with the paper's GENESYS layer — generic POSIX system
// call invocation from GPU code — implemented on top, plus every workload
// and experiment from the paper's evaluation.
//
// This package is the public facade. A minimal program:
//
//	m := genesys.NewMachine(genesys.DefaultConfig())
//	defer m.Shutdown()
//	proc := m.NewProcess("app")
//	_ = proc
//	m.E.Spawn("host", func(p *genesys.Proc) {
//	    k := m.GPU.Launch(p, genesys.Kernel{
//	        Name: "hello", WorkGroups: 4, WGSize: 256,
//	        Fn: func(w *genesys.Wavefront) {
//	            line := []byte("hello from the GPU\n")
//	            m.Genesys.InvokeWG(w, genesys.Request{
//	                NR:   genesys.SYS_write,
//	                Args: [6]uint64{1, uint64(len(line))},
//	                Buf:  line,
//	            }, genesys.Options{Blocking: true, Ordering: genesys.Relaxed,
//	                Kind: genesys.Consumer})
//	        },
//	    })
//	    k.Wait(p)
//	})
//	if err := m.Run(); err != nil { ... }
//	fmt.Print(m.OS.Console.Contents())
//
// See the examples/ directory for complete programs and DESIGN.md for
// the system inventory.
package genesys

import (
	"genesys/internal/core"
	"genesys/internal/errno"
	"genesys/internal/fs"
	"genesys/internal/gclib"
	"genesys/internal/gpu"
	"genesys/internal/oskern"
	"genesys/internal/platform"
	"genesys/internal/sim"
	"genesys/internal/syscalls"
)

// Machine is the fully assembled simulated system (Table III analogue).
type Machine = platform.Machine

// Config aggregates every subsystem's configuration.
type Config = platform.Config

// Proc is a simulated thread of execution.
type Proc = sim.Proc

// Time is virtual time in nanoseconds.
type Time = sim.Time

// Common durations.
const (
	Nanosecond  = sim.Nanosecond
	Microsecond = sim.Microsecond
	Millisecond = sim.Millisecond
	Second      = sim.Second
)

// GPU execution model.
type (
	// Kernel describes a GPU grid to launch.
	Kernel = gpu.Kernel
	// KernelRun is a launched kernel handle.
	KernelRun = gpu.KernelRun
	// Wavefront is a resident SIMD-64 wavefront executing a kernel body.
	Wavefront = gpu.Wavefront
	// WorkGroup is one resident work-group.
	WorkGroup = gpu.WorkGroup
)

// GENESYS system call interface.
type (
	// Request is one system call: number, arguments and syscall buffer.
	Request = syscalls.Request
	// Options selects blocking, ordering, kind and wait mode.
	Options = core.Options
	// Result is a completed call's return value and errno.
	Result = core.Result
	// Errno is a Linux-style error number.
	Errno = errno.Errno
	// Process is a CPU process — the kernel context GPU syscalls borrow.
	Process = oskern.Process
)

// Invocation strategy constants (§V).
const (
	// Strong ordering: barriers on both sides of the call.
	Strong = core.Strong
	// Relaxed ordering: one barrier elided according to Kind.
	Relaxed = core.Relaxed
	// Consumer calls (write-like) keep only the pre-call barrier.
	Consumer = core.Consumer
	// Producer calls (read-like) keep only the post-call barrier.
	Producer = core.Producer
	// WaitPoll spins on the syscall-area slot.
	WaitPoll = core.WaitPoll
	// WaitHaltResume halts the wavefront until the CPU's doorbell.
	WaitHaltResume = core.WaitHaltResume
)

// ErrKernelStrongOrdering rejects the deadlocking combination of strong
// ordering with kernel-granularity invocation (§V-A).
var ErrKernelStrongOrdering = core.ErrKernelStrongOrdering

// System call numbers implemented by the simulated kernel (Linux x86-64).
const (
	SYS_read            = syscalls.SYS_read
	SYS_write           = syscalls.SYS_write
	SYS_open            = syscalls.SYS_open
	SYS_close           = syscalls.SYS_close
	SYS_lseek           = syscalls.SYS_lseek
	SYS_mmap            = syscalls.SYS_mmap
	SYS_munmap          = syscalls.SYS_munmap
	SYS_ioctl           = syscalls.SYS_ioctl
	SYS_pread64         = syscalls.SYS_pread64
	SYS_pwrite64        = syscalls.SYS_pwrite64
	SYS_madvise         = syscalls.SYS_madvise
	SYS_socket          = syscalls.SYS_socket
	SYS_sendto          = syscalls.SYS_sendto
	SYS_recvfrom        = syscalls.SYS_recvfrom
	SYS_bind            = syscalls.SYS_bind
	SYS_getrusage       = syscalls.SYS_getrusage
	SYS_rt_sigqueueinfo = syscalls.SYS_rt_sigqueueinfo
)

// Open flags and seek whence values.
const (
	O_RDONLY = fs.O_RDONLY
	O_WRONLY = fs.O_WRONLY
	O_RDWR   = fs.O_RDWR
	O_CREAT  = fs.O_CREAT
	O_TRUNC  = fs.O_TRUNC
	O_APPEND = fs.O_APPEND

	SeekSet = fs.SeekSet
	SeekCur = fs.SeekCur
	SeekEnd = fs.SeekEnd
)

// POSIX is the GPU-side wrapper library: typed Open/Pread/SendTo/…
// functions over the raw slot interface (the role of the paper's
// modified HCC device library). Obtain one with NewPOSIX.
type POSIX = gclib.C

// NewPOSIX binds the POSIX wrapper library to a machine. Inside a kernel:
//
//	c := genesys.NewPOSIX(m)
//	fd, _ := c.Open(w, "/tmp/data", genesys.O_RDONLY)
//	n, _ := c.Pread(w, fd, buf, 0)
func NewPOSIX(m *Machine) POSIX { return gclib.C{G: m.Genesys} }

// NewMachine assembles a simulated machine.
func NewMachine(cfg Config) *Machine { return platform.New(cfg) }

// DefaultConfig mirrors the paper's FX-9800P testbed (Table III).
func DefaultConfig() Config { return platform.DefaultConfig() }

// DiscreteGPUConfig models the machine with a discrete PCIe GPU instead
// of the integrated one (§VI: GENESYS "generalizes to discrete GPUs").
func DiscreteGPUConfig() Config { return platform.DiscreteGPUConfig() }
